package desc_test

import (
	"bytes"
	"fmt"

	"desc"
)

// The paper's introductory example (Figure 3): one byte over a DESC link
// costs three transitions — two data toggles plus the shared reset strobe.
func Example() {
	codec, err := desc.NewCodec(8, 4, 2, desc.SkipNone)
	if err != nil {
		panic(err)
	}
	cost := codec.Send([]byte{0x53}) // 01010011
	fmt.Printf("%d flips in %d cycles\n", cost.Flips.Data+cost.Flips.Control, cost.Cycles)
	// Output: 3 flips in 6 cycles
}

// Zero skipping (Figure 10): the chunk values (0,0,5,0) need only three
// transitions in a five-cycle window.
func ExampleNewCodec() {
	codec, err := desc.NewCodec(16, 4, 4, desc.SkipZero)
	if err != nil {
		panic(err)
	}
	block := []byte{0x00, 0x05} // chunks 0,0,5,0
	cost := codec.Send(block)
	fmt.Printf("%d flips, %d-cycle window\n", cost.Flips.Data+cost.Flips.Control, cost.Cycles)
	// Output: 3 flips, 5-cycle window
}

// The cycle-accurate transmitter/receiver pair decodes blocks purely from
// wire toggles, even through a multi-cycle wire delay.
func ExampleNewChannel() {
	ch, err := desc.NewChannel(512, 4, 128, desc.SkipZero, 2)
	if err != nil {
		panic(err)
	}
	block := make([]byte, 64)
	copy(block, "synchronized counters")
	_, decoded := ch.Send(block)
	fmt.Println(bytes.Equal(decoded, block))
	// Output: true
}

// Any registered scheme builds through NewLink; DESC links expose two
// extra wires (the reset/skip strobe and the synchronization strobe).
func ExampleNewLink() {
	l, err := desc.NewLink(desc.LinkSpec{
		Scheme: "desc-zero", BlockBits: 512, DataWires: 128, ChunkBits: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d data wires + %d\n", l.Name(), l.DataWires(), l.ExtraWires())
	// Output: desc-zero: 128 data wires + 2
}

// Simulate runs a benchmark on the Table 1 system; comparing schemes on
// the same benchmark reproduces the paper's headline deltas.
func ExampleSimulate() {
	base, err := desc.Simulate(desc.SystemConfig{
		Scheme: "binary", DataWires: 64, InstrPerContext: 5000,
	}, "Radix")
	if err != nil {
		panic(err)
	}
	opt, err := desc.Simulate(desc.SystemConfig{
		Scheme: "desc-zero", DataWires: 128, InstrPerContext: 5000,
	}, "Radix")
	if err != nil {
		panic(err)
	}
	fmt.Printf("DESC saves L2 energy: %v\n", opt.L2EnergyJ < base.L2EnergyJ)
	fmt.Printf("slowdown under 5%%: %v\n", float64(opt.Cycles) < 1.05*float64(base.Cycles))
	// Output:
	// DESC saves L2 energy: true
	// slowdown under 5%: true
}
